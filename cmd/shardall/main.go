// Command shardall demonstrates distributed shard/merge execution locally:
// it launches K experiments subprocesses — one per shard, each executing
// only its own stride of every sweep's job indices and recording the
// results to a shard file — then recombines the shard files with one merge
// subprocess that renders the final tables to stdout. The merged output is
// byte-identical to a plain single-process `experiments` run with the same
// flags (per-job seeding never depends on which process ran a job);
// `diff <(experiments ...) <(shardall ...)` is empty. The same mechanics
// distribute across machines: run the -shard command on each worker, copy
// the record files, and -merge them anywhere.
//
// Stragglers and failures do not stall the run: a shard subprocess that
// exits non-zero or exceeds -timeout is killed and relaunched with the same
// I/K assignment — per-job results depend only on (seed, index), so a retry
// produces byte-identical records — up to -retries extra attempts. With
// -stream, the merge subprocess starts alongside the shards and ingests
// record files as they land (experiments -merge-dir), rendering as soon as
// every stride is covered instead of after the slowest process exits.
//
// Usage:
//
//	shardall [-k K] [-bin CMD] [-dir D] [-keep]
//	         [-retries N] [-timeout T] [-stream]
//	         [-run ID] [-markdown] [-seed S] [-samples N] [-workers W]
//	         [-grid spec]... [-gridalgo A] [-cache] [-cachesize N]
//
//	-k K        number of shard subprocesses (default 3)
//	-bin CMD    command to run one shard, split on spaces (default
//	            "go run ./cmd/experiments" — run shardall from the
//	            repository root, or point -bin at a built binary)
//	-dir D      directory for the shard record files (default: a
//	            temporary directory, removed afterwards). Stale
//	            shard-*-of-*.jsonl files from a previous run in a
//	            reused directory are removed first
//	            — they would poison a streaming merge's workload
//	            fingerprint
//	-keep       keep the shard record files for inspection
//	-retries N  extra attempts for a shard whose subprocess fails or
//	            times out (default 1); the relaunch recomputes the same
//	            byte-identical records
//	-timeout T  per-attempt deadline for one shard subprocess; on expiry
//	            the subprocess is killed and the shard retried
//	            (default 0 = no deadline)
//	-stream     start the merge subprocess concurrently and stream the
//	            shard files into it as they land (-merge-dir) instead of
//	            merging after every shard has exited
//
// The remaining flags are forwarded verbatim to every subprocess; see
// cmd/experiments for their meaning. With -cache, each shard publishes its
// result cache next to its record file (shard-I-of-K.cache.jsonl) and the
// merge warms from their union. Per-shard wall times and a summary are
// reported on stderr.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/analysis"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ", ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var grids multiFlag
	var (
		k         = flag.Int("k", 3, "number of shard subprocesses")
		bin       = flag.String("bin", "go run ./cmd/experiments", "command to run one shard (split on spaces)")
		dir       = flag.String("dir", "", "directory for shard record files (default: a temp dir)")
		keep      = flag.Bool("keep", false, "keep the shard record files")
		retries   = flag.Int("retries", 1, "extra attempts for a failed or timed-out shard subprocess")
		timeout   = flag.Duration("timeout", 0, "per-attempt deadline for one shard subprocess (0 = none)")
		stream    = flag.Bool("stream", false, "merge concurrently, ingesting shard files as they land")
		id        = flag.String("run", "", "forwarded: run a single experiment by id")
		markdown  = flag.Bool("markdown", false, "forwarded: emit markdown")
		seed      = flag.Int64("seed", 0, "forwarded: base seed")
		samples   = flag.Int("samples", 0, "forwarded: Monte-Carlo draws per grid cell")
		workers   = flag.Int("workers", 0, "forwarded: sweep workers per subprocess")
		gridAlgo  = flag.String("gridalgo", "search", "forwarded: -grid algorithm")
		useCache  = flag.Bool("cache", false, "forwarded: in-memory result cache per subprocess")
		cacheSize = flag.Int("cachesize", 0, "forwarded: cache capacity")
	)
	flag.Var(&grids, "grid", "forwarded: sweep axis (repeatable)")
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "shardall:", err)
		return 1
	}
	if *k < 1 {
		return fail(fmt.Errorf("-k %d: want at least 1 shard", *k))
	}
	if *retries < 0 {
		return fail(fmt.Errorf("-retries %d: want at least 0", *retries))
	}
	binParts := strings.Fields(*bin)
	if len(binParts) == 0 {
		return fail(fmt.Errorf("-bin is empty"))
	}

	if *dir == "" {
		tmp, err := os.MkdirTemp("", "shardall-*")
		if err != nil {
			return fail(err)
		}
		if !*keep {
			defer os.RemoveAll(tmp)
		}
		*dir = tmp
	} else if err := os.MkdirAll(*dir, 0o755); err != nil {
		return fail(err)
	} else if err := removeStaleShardFiles(*dir); err != nil {
		return fail(err)
	}

	// Flags every subprocess shares. Seed/samples/workers are always passed
	// explicitly so the shards and the merge agree on the workload
	// fingerprint by construction.
	shared := []string{
		"-seed", fmt.Sprint(*seed),
		"-samples", fmt.Sprint(*samples),
		"-workers", fmt.Sprint(*workers),
	}
	if *id != "" {
		shared = append(shared, "-run", *id)
	}
	if *markdown {
		shared = append(shared, "-markdown")
	}
	for _, g := range grids {
		shared = append(shared, "-grid", g)
	}
	if len(grids) > 0 {
		shared = append(shared, "-gridalgo", *gridAlgo)
	}
	if *useCache {
		shared = append(shared, "-cache")
		if *cacheSize != 0 {
			shared = append(shared, "-cachesize", fmt.Sprint(*cacheSize))
		}
	}

	// With -stream the merge subprocess starts first and watches the shard
	// directory, so tables render the moment the last stride's record file
	// lands — not after the slowest subprocess has also been reaped.
	mergeCtx, cancelMerge := context.WithCancel(context.Background())
	defer cancelMerge()
	var mergeDone chan error
	mergeStart := time.Now()
	if *stream {
		args := append([]string{}, binParts[1:]...)
		args = append(args, "-merge-dir", *dir, "-merge-poll", "100ms")
		args = append(args, shared...)
		merge := exec.CommandContext(mergeCtx, binParts[0], args...)
		killProcessGroup(merge)
		merge.Stdout = os.Stdout
		merge.Stderr = os.Stderr
		if err := merge.Start(); err != nil {
			return fail(fmt.Errorf("merge: %w", err))
		}
		mergeDone = make(chan error, 1)
		go func() { mergeDone <- merge.Wait() }()
	}

	// Phase 1: the K shard subprocesses, concurrently — the local stand-in
	// for K machines. Each shard retries independently: a relaunch with the
	// same I/K recomputes byte-identical records, so a straggler or crash
	// costs only its own wall time, never correctness.
	files := make([]string, *k)
	seconds := make([]float64, *k)
	attempts := make([]int, *k)
	errs := make([]error, *k)
	stderrs := make([]bytes.Buffer, *k)
	var wg sync.WaitGroup
	for i := 0; i < *k; i++ {
		files[i] = filepath.Join(*dir, fmt.Sprintf("shard-%d-of-%d.jsonl", i, *k))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			args := append([]string{}, binParts[1:]...)
			args = append(args, "-shard", fmt.Sprintf("%d/%d", i, *k), "-shardfile", files[i])
			args = append(args, shared...)
			attempts[i], seconds[i], errs[i] = runShardWithRetry(i, *k, *retries, *timeout, func(ctx context.Context) error {
				cmd := exec.CommandContext(ctx, binParts[0], args...)
				killProcessGroup(cmd)
				cmd.Stdout = nil // shards render nothing
				stderrs[i].Reset()
				cmd.Stderr = &stderrs[i]
				return cmd.Run()
			})
		}(i)
	}
	wg.Wait()
	failed := false
	for i, err := range errs {
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "shardall: shard %d/%d failed: %v\n%s", i, *k, err, stderrs[i].String())
		} else if attempts[i] > 1 {
			fmt.Fprintf(os.Stderr, "shardall: shard %d/%d done in %.2fs (attempt %d)\n", i, *k, seconds[i], attempts[i])
		} else {
			fmt.Fprintf(os.Stderr, "shardall: shard %d/%d done in %.2fs\n", i, *k, seconds[i])
		}
	}
	if failed {
		// A permanently dead shard means coverage can never complete: kill
		// the streaming merge rather than leave it polling forever.
		if *stream {
			cancelMerge()
			<-mergeDone
		}
		return 1
	}
	s := analysis.Summarize(seconds)
	fmt.Fprintf(os.Stderr, "shardall: %d shards, wall s min/mean/p90/max = %.2f/%.2f/%.2f/%.2f\n",
		*k, s.Min, s.Mean, s.P90, s.Max)

	// Phase 2: the merge recombines the records and renders the tables —
	// exactly the command a user would run on the collector machine. In
	// stream mode it has been running all along; otherwise launch it now.
	if *stream {
		if err := <-mergeDone; err != nil {
			return fail(fmt.Errorf("merge: %w", err))
		}
	} else {
		args := append([]string{}, binParts[1:]...)
		for _, f := range files {
			args = append(args, "-merge", f)
		}
		args = append(args, shared...)
		merge := exec.Command(binParts[0], args...)
		merge.Stdout = os.Stdout
		merge.Stderr = os.Stderr
		mergeStart = time.Now()
		if err := merge.Run(); err != nil {
			return fail(fmt.Errorf("merge: %w", err))
		}
	}
	fmt.Fprintf(os.Stderr, "shardall: merge done in %.2fs\n", time.Since(mergeStart).Seconds())
	if *keep {
		fmt.Fprintf(os.Stderr, "shardall: shard records kept in %s\n", *dir)
	}
	return 0
}

// killProcessGroup makes cancelling cmd's context kill the subprocess's
// whole process group, not just the direct child: the default -bin is
// "go run ./cmd/experiments", whose compiled grandchild would otherwise
// survive a -timeout or stream-merge cancellation and keep running as an
// orphan. WaitDelay additionally keeps Wait from blocking on any straggler
// still holding the stdio pipes.
func killProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.Cancel = func() error {
		return syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
	}
	cmd.WaitDelay = time.Second
}

// removeStaleShardFiles clears the record and cache files a previous run
// left in a reused -dir (a -keep directory, or the same -dir with a
// different -k). A streaming merge fixes its workload fingerprint on the
// first record file it sees, so a stale file from an earlier run would
// poison the watcher before this run's shards overwrite it — and under a
// different K the names never collide, so the stale file would survive the
// whole run.
func removeStaleShardFiles(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "shard-*-of-*.jsonl"))
	if err != nil {
		return err
	}
	for _, p := range paths {
		if err := os.Remove(p); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "shardall: removed stale %s\n", p)
	}
	return nil
}

// runShardWithRetry drives the attempt loop of one shard: launch runs one
// subprocess attempt under ctx (which carries the per-attempt deadline when
// timeout > 0). A failed or timed-out attempt is retried up to retries
// extra times — the relaunch recomputes the same byte-identical records, so
// retrying is always safe. It returns the number of attempts made, the wall
// time of the successful attempt, and the final error (nil on success).
func runShardWithRetry(i, k, retries int, timeout time.Duration, launch func(ctx context.Context) error) (attempts int, secs float64, err error) {
	for attempt := 1; ; attempt++ {
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, timeout)
		}
		start := time.Now()
		err := launch(ctx)
		elapsed := time.Since(start).Seconds()
		timedOut := ctx.Err() == context.DeadlineExceeded
		cancel()
		if err == nil {
			return attempt, elapsed, nil
		}
		reason := err.Error()
		if timedOut {
			reason = fmt.Sprintf("timed out after %v", timeout)
		}
		if attempt > retries {
			return attempt, elapsed, fmt.Errorf("%s (after %d attempt(s))", reason, attempt)
		}
		fmt.Fprintf(os.Stderr, "shardall: shard %d/%d attempt %d failed (%s); retrying\n", i, k, attempt, reason)
	}
}
