package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRunShardWithRetry covers the attempt loop in isolation: first-attempt
// success, fail-then-succeed, exhausted retries, and the timeout path where
// the per-attempt context kills a hung launch.
func TestRunShardWithRetry(t *testing.T) {
	t.Run("first attempt succeeds", func(t *testing.T) {
		attempts, _, err := runShardWithRetry(0, 3, 2, 0, func(context.Context) error { return nil })
		if attempts != 1 || err != nil {
			t.Errorf("attempts=%d err=%v, want 1, nil", attempts, err)
		}
	})
	t.Run("fail then succeed", func(t *testing.T) {
		calls := 0
		attempts, _, err := runShardWithRetry(1, 3, 1, 0, func(context.Context) error {
			calls++
			if calls == 1 {
				return errors.New("crash")
			}
			return nil
		})
		if attempts != 2 || err != nil {
			t.Errorf("attempts=%d err=%v, want 2, nil", attempts, err)
		}
	})
	t.Run("retries exhausted", func(t *testing.T) {
		attempts, _, err := runShardWithRetry(1, 3, 2, 0, func(context.Context) error {
			return errors.New("crash")
		})
		if attempts != 3 || err == nil {
			t.Errorf("attempts=%d err=%v, want 3 attempts and a final error", attempts, err)
		}
		if !strings.Contains(err.Error(), "after 3 attempt") {
			t.Errorf("final error does not report the attempt count: %v", err)
		}
	})
	t.Run("zero retries fail immediately", func(t *testing.T) {
		attempts, _, err := runShardWithRetry(1, 3, 0, 0, func(context.Context) error {
			return errors.New("crash")
		})
		if attempts != 1 || err == nil {
			t.Errorf("attempts=%d err=%v, want a single failed attempt", attempts, err)
		}
	})
	t.Run("timeout kills and retries", func(t *testing.T) {
		calls := 0
		attempts, _, err := runShardWithRetry(1, 3, 1, 30*time.Millisecond, func(ctx context.Context) error {
			calls++
			if calls == 1 {
				<-ctx.Done() // a hung subprocess dies with the context
				return ctx.Err()
			}
			return nil
		})
		if attempts != 2 || err != nil {
			t.Errorf("attempts=%d err=%v, want timeout then clean retry", attempts, err)
		}
	})
	t.Run("timeout reported when exhausted", func(t *testing.T) {
		_, _, err := runShardWithRetry(1, 3, 0, 10*time.Millisecond, func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		})
		if err == nil || !strings.Contains(err.Error(), "timed out after") {
			t.Errorf("err = %v, want a timeout report", err)
		}
	})
}

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binaries builds the experiments and shardall binaries once per test run
// and returns their paths plus the flaky wrapper script's.
func binaries(t *testing.T) (experiments, shardall, flaky string) {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "shardall-test-*")
		if buildErr != nil {
			return
		}
		for _, pkg := range []string{"experiments", "shardall"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, pkg), "repro/cmd/"+pkg)
			cmd.Dir = "../.."
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	wrapper, err := filepath.Abs("../../scripts/flaky-shard.sh")
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(buildDir, "experiments"), filepath.Join(buildDir, "shardall"), wrapper
}

// TestShardallStragglerEndToEnd is the acceptance scenario: one shard
// subprocess dies (or hangs until the per-shard deadline kills it) on its
// first attempt, the retry re-runs the same stride, and the merged tables
// are byte-identical to the single-process run.
func TestShardallStragglerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test")
	}
	expBin, shardallBin, flaky := binaries(t)

	var want bytes.Buffer
	ref := exec.Command(expBin, "-run", "E2", "-seed", "7")
	ref.Stdout = &want
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cases := []struct {
		name string
		mode string
		args []string
	}{
		{name: "killed shard, batch merge", mode: "exit",
			args: []string{"-k", "3", "-retries", "1"}},
		{name: "hung shard killed by timeout, streaming merge", mode: "hang",
			args: []string{"-k", "3", "-retries", "1", "-timeout", "2s", "-stream"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			args := append(append([]string{}, tc.args...),
				"-bin", flaky, "-dir", filepath.Join(dir, "shards"),
				"-run", "E2", "-seed", "7")
			cmd := exec.Command(shardallBin, args...)
			cmd.Env = append(os.Environ(),
				"FLAKY_BIN="+expBin,
				"FLAKY_SHARD=1/3",
				"FLAKY_MODE="+tc.mode,
				"FLAKY_MARK="+filepath.Join(dir, "first-attempt-done"),
			)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("shardall: %v\n%s", err, stderr.String())
			}
			if stdout.String() != want.String() {
				t.Errorf("merged output differs from the single-process run\nstderr:\n%s", stderr.String())
			}
			if !strings.Contains(stderr.String(), "retrying") {
				t.Errorf("no retry happened — the straggler scenario did not trigger:\n%s", stderr.String())
			}
			if tc.mode == "hang" && !strings.Contains(stderr.String(), "timed out after") {
				t.Errorf("hung shard was not killed by the deadline:\n%s", stderr.String())
			}
		})
	}
}

// TestShardallReusedDirStream: a -dir kept from a previous run with a
// different K holds stale record files whose names never collide with this
// run's; the stale-file cleanup must stop them from poisoning the streaming
// merge's workload fingerprint.
func TestShardallReusedDirStream(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test")
	}
	expBin, shardallBin, _ := binaries(t)

	var want bytes.Buffer
	ref := exec.Command(expBin, "-run", "E2", "-seed", "2")
	ref.Stdout = &want
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := filepath.Join(t.TempDir(), "shards")
	first := exec.Command(shardallBin, "-k", "4", "-keep", "-dir", dir,
		"-bin", expBin, "-run", "E2", "-seed", "1")
	if out, err := first.CombinedOutput(); err != nil {
		t.Fatalf("first run: %v\n%s", err, out)
	}

	second := exec.Command(shardallBin, "-k", "3", "-stream", "-dir", dir,
		"-bin", expBin, "-run", "E2", "-seed", "2")
	var stdout, stderr bytes.Buffer
	second.Stdout, second.Stderr = &stdout, &stderr
	if err := second.Run(); err != nil {
		t.Fatalf("second run in reused dir: %v\n%s", err, stderr.String())
	}
	if stdout.String() != want.String() {
		t.Errorf("reused-dir streamed output differs from the single-process run\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "removed stale") {
		t.Errorf("stale record files were not cleaned:\n%s", stderr.String())
	}
}

// TestShardallRetriesExhausted: a shard that fails every attempt takes the
// whole run down with a non-zero exit — and in stream mode also tears down
// the concurrently running merge instead of leaving it polling forever.
func TestShardallRetriesExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess end-to-end test")
	}
	_, shardallBin, _ := binaries(t)
	for _, streamArgs := range [][]string{nil, {"-stream"}} {
		name := "batch"
		if streamArgs != nil {
			name = "stream"
		}
		t.Run(name, func(t *testing.T) {
			args := append(append([]string{}, streamArgs...),
				"-k", "2", "-retries", "1", "-bin", "false", // every attempt fails
				"-run", "E2", "-seed", "7")
			cmd := exec.Command(shardallBin, args...)
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			start := time.Now()
			err := cmd.Run()
			if err == nil {
				t.Fatal("shardall succeeded with permanently failing shards")
			}
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Errorf("teardown took %v — the streaming merge was left running", elapsed)
			}
			if !strings.Contains(stderr.String(), "failed") {
				t.Errorf("failure not reported:\n%s", stderr.String())
			}
		})
	}
}
