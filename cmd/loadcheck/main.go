// Command loadcheck drives a live rvserved daemon with concurrent clients
// and asserts the serving path behaves under load: the singleflight cache
// deduplicates concurrent identical queries, repeats hit, the /metrics
// counters stay internally coherent (hits + misses == lookups), and the
// graceful-shutdown flush leaves a loadable warm-start file. It reports
// client-observed p50/p99 latency and the cache-hit ratio.
//
// It spawns the prebuilt server binary (-server), so the check covers the
// real process lifecycle — flag parsing, ephemeral-port listen, SIGTERM
// shutdown — not just the handlers:
//
//	go build -o bin/rvserved ./cmd/rvserved
//	go run ./cmd/loadcheck -server bin/rvserved -clients 8 -duration 5s
//
// Exit status 0 means every assertion held. `make loadcheck` wires this up,
// and CI runs it on every push.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cache"
)

func main() {
	var (
		server   = flag.String("server", "bin/rvserved", "path to the rvserved binary")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		duration = flag.Duration("duration", 5*time.Second, "steady-state load duration")
	)
	flag.Parse()
	if err := run(*server, *clients, *duration); err != nil {
		fmt.Fprintln(os.Stderr, "loadcheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("loadcheck: PASS")
}

// metricsDoc mirrors the parts of rvserved's GET /metrics we assert on.
type metricsDoc struct {
	Counters map[string]struct {
		Total uint64 `json:"total"`
	} `json:"counters"`
	Cache struct {
		Lookups, Hits, Misses, Dedups uint64
		Len                           int
	} `json:"cache"`
}

func run(serverBin string, clients int, duration time.Duration) error {
	tmp, err := os.MkdirTemp("", "loadcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	cacheFile := filepath.Join(tmp, "served.jsonl")

	cmd := exec.Command(serverBin,
		"-addr", "127.0.0.1:0",
		"-cachefile", cacheFile,
		"-flush", "2s",
		"-sweeps", "2",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %w", serverBin, err)
	}
	defer cmd.Process.Kill()

	base, lines, err := awaitListening(stdout)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, lines) // keep draining so the server never blocks on stdout

	// Phase 1 — dedup: every client fires the same expensive cold query at
	// once. A symmetric instance walks the whole horizon (~tens of ms), so
	// the followers land while the leader simulates and the singleflight
	// must collapse them.
	coldBody := `{"v":1,"tau":1,"phi":0,"chi":1,"dx":1,"dy":0,"horizon":10000}`
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := post(base, "/v1/rendezvous", coldBody); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return fmt.Errorf("dedup burst: %w", err)
	default:
	}

	// Phase 2 — steady state: each client loops over a small pool of
	// distinct point queries plus the occasional bounded sweep, so repeats
	// hit the cache and the sweep path sees admission-controlled traffic.
	var mu sync.Mutex
	var latencies []float64
	var queries, rejected int
	deadline := time.Now().Add(duration)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for time.Now().Before(deadline) {
				var path, body string
				if rng.Intn(20) == 0 {
					path = "/v1/sweep"
					body = `{"axes":["v=0.25:0.75:0.25"],"samples":2,"seed":7}`
				} else {
					path = "/v1/rendezvous"
					body = fmt.Sprintf(`{"v":0.%d,"dx":%d,"dy":0,"r":0.25}`,
						2+rng.Intn(7), 1+rng.Intn(3))
				}
				start := time.Now()
				status, err := post(base, path, body)
				elapsed := time.Since(start).Seconds()
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				queries++
				latencies = append(latencies, elapsed)
				if status == http.StatusTooManyRequests {
					rejected++
				} else if status != http.StatusOK {
					mu.Unlock()
					errs <- fmt.Errorf("%s: unexpected status %d", path, status)
					return
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return fmt.Errorf("steady state: %w", err)
	default:
	}

	// Scrape and assert the serving-path counters.
	m, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	sort.Float64s(latencies)
	hitRatio := float64(m.Cache.Hits) / float64(max(m.Cache.Lookups, 1))
	fmt.Printf("loadcheck: %d clients, %d queries (%d sweep-rejected) in %v\n",
		clients, queries, rejected, duration)
	fmt.Printf("loadcheck: latency p50 %.2fms p99 %.2fms; cache %d lookups, hit ratio %.3f, %d dedups\n",
		quantile(latencies, 0.5)*1e3, quantile(latencies, 0.99)*1e3,
		m.Cache.Lookups, hitRatio, m.Cache.Dedups)

	if m.Cache.Hits+m.Cache.Misses != m.Cache.Lookups {
		return fmt.Errorf("incoherent cache counters: hits %d + misses %d != lookups %d",
			m.Cache.Hits, m.Cache.Misses, m.Cache.Lookups)
	}
	if m.Cache.Dedups == 0 {
		return fmt.Errorf("no dedups: %d concurrent identical cold queries never collapsed", clients)
	}
	if m.Cache.Hits == 0 {
		return fmt.Errorf("no cache hits across %d repeating queries", queries)
	}
	if got := m.Counters["http.rendezvous"].Total; got == 0 {
		return fmt.Errorf("telemetry http.rendezvous counter never moved")
	}

	// Graceful shutdown: SIGTERM, wait for the final flush, and reload the
	// warm-start file the way a restarted daemon would.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("server exit after SIGTERM: %w", err)
	}
	warm, err := cache.Open(cacheFile, 0)
	if err != nil {
		return fmt.Errorf("reload flushed cache: %w", err)
	}
	if warm.Len() == 0 {
		return fmt.Errorf("shutdown flush left an empty cache file")
	}
	fmt.Printf("loadcheck: shutdown flush loadable: %d results in %s\n", warm.Len(), cacheFile)
	return nil
}

// awaitListening reads the server's stdout until the "listening on" line and
// returns the base URL plus the still-open reader.
func awaitListening(stdout io.Reader) (string, io.Reader, error) {
	br := bufio.NewReader(stdout)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		line, err := br.ReadString('\n')
		if err != nil {
			return "", nil, fmt.Errorf("server exited before listening: %w", err)
		}
		if i := strings.Index(line, "listening on "); i >= 0 {
			return strings.TrimSpace(line[i+len("listening on "):]), br, nil
		}
	}
	return "", nil, fmt.Errorf("no listening line within 10s")
}

func post(base, path, body string) (int, error) {
	resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func scrapeMetrics(base string) (metricsDoc, error) {
	var m metricsDoc
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("decode /metrics: %w", err)
	}
	return m, nil
}

// quantile interpolates the q-quantile of a sorted slice (0 when empty).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
