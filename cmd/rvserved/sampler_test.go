package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/cache"
	"repro/internal/sampler"
)

// TestSweepSamplerField: the "sampler" request field selects the draw
// source, the response echoes the resolved name, and the per-kind
// telemetry counter moves. The default (omitted field) resolves to pseudo.
func TestSweepSamplerField(t *testing.T) {
	s, ts := newTestServer(t, cache.New(0), 1)

	var res struct {
		Sampler string `json:"sampler"`
		Cells   []struct {
			Met int `json:"met"`
		} `json:"cells"`
	}

	status, body := post(t, ts, "/v1/sweep",
		`{"axes":["v=0.25:0.5:0.25"],"samples":4,"seed":3,"sampler":"sobol"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Sampler != "sobol" {
		t.Errorf("response sampler %q, want sobol", res.Sampler)
	}
	if got := s.samplerUse[sampler.Sobol].Total(); got != 1 {
		t.Errorf("sampler.sobol counter %d, want 1", got)
	}

	status, body = post(t, ts, "/v1/sweep", `{"axes":["v=0.25:0.5:0.25"],"samples":2}`)
	if status != http.StatusOK {
		t.Fatalf("default-sampler sweep: status %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Sampler != "pseudo" {
		t.Errorf("default response sampler %q, want pseudo", res.Sampler)
	}
	if got := s.samplerUse[sampler.Pseudo].Total(); got != 1 {
		t.Errorf("sampler.pseudo counter %d, want 1", got)
	}
}

// TestSweepSamplerChangesEstimate: under a fixed seed, sobol draws differ
// from pseudo draws, so the two sweeps are allowed to disagree — but both
// must stay deterministic: repeating each request byte-identically repeats
// its response body.
func TestSweepSamplerDeterministic(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 2)
	for _, req := range []string{
		`{"axes":["v=0.25:0.5:0.25"],"samples":4,"seed":9,"sampler":"stratified"}`,
		`{"axes":["v=0.25:0.5:0.25"],"samples":4,"seed":9,"sampler":"halton"}`,
	} {
		_, first := post(t, ts, "/v1/sweep", req)
		_, again := post(t, ts, "/v1/sweep", req)
		// elapsed_ms varies per run; compare everything else.
		var a, b map[string]any
		if err := json.Unmarshal(first, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(again, &b); err != nil {
			t.Fatal(err)
		}
		delete(a, "elapsed_ms")
		delete(b, "elapsed_ms")
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("request %s not deterministic:\n%s\n%s", req, aj, bj)
		}
	}
}

// TestSamplerBadRequests: unknown sampler names are a 400 on both the sweep
// and the point endpoint, with a JSON error naming the valid kinds.
func TestSamplerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 1)
	cases := []struct{ path, body string }{
		{"/v1/sweep", `{"axes":["v=1"],"sampler":"mersenne"}`},
		{"/v1/sweep", `{"axes":["v=1"],"sampler":"SOBOL"}`}, // names are exact
		{"/v1/rendezvous", `{"v":0.5,"sampler":"mersenne"}`},
	}
	for _, tc := range cases {
		status, body := post(t, ts, tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d (body %s), want 400", tc.path, tc.body, status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s %s: body %q not a JSON error", tc.path, tc.body, body)
		}
	}

	// A valid sampler on the point endpoint is accepted (parity, no draws).
	status, body := post(t, ts, "/v1/rendezvous", `{"v":0.5,"sampler":"sobol"}`)
	if status != http.StatusOK {
		t.Errorf("point query with valid sampler: status %d, body %s", status, body)
	}
}

// TestMetricsSamplerCounters: every sampler kind has a counter in the
// /metrics snapshot, zero or not.
func TestMetricsSamplerCounters(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 1)
	if status, body := post(t, ts, "/v1/sweep",
		`{"axes":["v=0.25:0.5:0.25"],"samples":2,"sampler":"halton"}`); status != http.StatusOK {
		t.Fatalf("sweep failed: %d %s", status, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]struct {
			Total uint64 `json:"total"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, kind := range sampler.Kinds() {
		if _, ok := snap.Counters["sampler."+kind.String()]; !ok {
			t.Errorf("metrics missing counter sampler.%s", kind)
		}
	}
	if got := snap.Counters["sampler.halton"].Total; got != 1 {
		t.Errorf("sampler.halton = %d, want 1", got)
	}
}
