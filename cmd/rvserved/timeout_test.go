package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// newTimeoutServer is newTestServer with a per-request deadline.
func newTimeoutServer(t *testing.T, timeout time.Duration) (*server, *httptest.Server) {
	t.Helper()
	pool := sweep.NewPool(2)
	t.Cleanup(pool.Close)
	s := newServer(cache.New(0), pool, telemetry.NewRegistry(0), 1, 1<<20, 4, true, timeout)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestDeadline503 proves the -timeout deadline reaches the horizon-walk loop:
// a symmetric (infeasible) instance with an enormous horizon would walk for
// ages, but under a nanosecond deadline the request comes back promptly as
// 503 + Retry-After with requests.deadline incremented — the cancellation
// stopped the walk, not the horizon.
func TestDeadline503(t *testing.T) {
	s, ts := newTimeoutServer(t, time.Nanosecond)

	start := time.Now()
	status, body := post(t, ts, "/v1/rendezvous",
		`{"v":1,"tau":1,"phi":0,"chi":1,"dx":1,"dy":0,"horizon":1e12}`)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("canceled walk took %v; cancellation did not reach the loop", elapsed)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (body %s), want 503", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "deadline") {
		t.Errorf("503 body %q, want a JSON error mentioning the deadline", body)
	}
	if got := s.deadline.Total(); got != 1 {
		t.Errorf("requests.deadline = %d, want 1", got)
	}

	// The search path threads the same context.
	status, _ = post(t, ts, "/v1/search", `{"x":1e6,"y":0,"horizon":1e12}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("search under expired deadline: status %d, want 503", status)
	}
	if got := s.deadline.Total(); got != 2 {
		t.Errorf("requests.deadline = %d, want 2", got)
	}
}

// TestSweepDeadline503 runs a sweep whose cells are all infeasible
// long-horizon walks under an immediate deadline: the cancellation must
// propagate through the sweep engine's error wrappers into a 503.
func TestSweepDeadline503(t *testing.T) {
	s, ts := newTimeoutServer(t, time.Nanosecond)
	status, body := post(t, ts, "/v1/sweep", `{"axes":["v=1:1:1","phi=0:0:1"]}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (body %s), want 503", status, body)
	}
	if got := s.deadline.Total(); got == 0 {
		t.Error("requests.deadline not incremented by a canceled sweep")
	}
}

// TestDeadlineRetryAfter checks the 503 carries the Retry-After hint.
func TestDeadlineRetryAfter(t *testing.T) {
	_, ts := newTimeoutServer(t, time.Nanosecond)
	resp, err := http.Post(ts.URL+"/v1/rendezvous", "application/json",
		bytes.NewReader([]byte(`{"v":1,"tau":1,"phi":0,"chi":1,"horizon":1e12}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After header")
	}
}

// TestDeadlineDisabledIdentical: with -timeout 0 the request context is used
// as-is and a normal query is answered exactly as before — the deadline path
// costs nothing when off.
func TestDeadlineDisabledIdentical(t *testing.T) {
	s, ts := newTimeoutServer(t, 0)
	status, body := post(t, ts, "/v1/rendezvous", `{"v":0.5,"dx":1,"dy":0}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	if got := s.deadline.Total(); got != 0 {
		t.Errorf("requests.deadline = %d with timeouts disabled, want 0", got)
	}
}

// TestGenerousDeadlineCompletes: a deadline far beyond the query's cost does
// not perturb the answer — same bytes a no-deadline server produces.
func TestGenerousDeadlineCompletes(t *testing.T) {
	_, tsPlain := newTimeoutServer(t, 0)
	_, tsDeadline := newTimeoutServer(t, time.Minute)
	q := `{"v":0.5,"dx":1,"dy":0,"r":0.25}`
	st1, body1 := post(t, tsPlain, "/v1/rendezvous", q)
	st2, body2 := post(t, tsDeadline, "/v1/rendezvous", q)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", st1, st2)
	}
	var r1, r2 simResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	r1.ElapsedMS, r2.ElapsedMS = 0, 0
	if r1 != r2 {
		t.Errorf("deadline changed the result: %+v != %+v", r2, r1)
	}
}

// TestOversizedBody400: request bodies beyond maxRequestBody are cut off by
// MaxBytesReader and answered 400, never buffered whole.
func TestOversizedBody400(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 1)
	huge := `{"v":0.5,"pad":"` + strings.Repeat("x", maxRequestBody+1) + `"}`
	status, body := post(t, ts, "/v1/rendezvous", huge)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d (%s), want 400", status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("oversized-body response %q not a JSON error", body)
	}
}

// TestSlowlorisHeaderCutoff starts a real listener through newHTTPServer with
// a short header deadline, dribbles half a request, and checks the server
// cuts the connection off promptly instead of holding it open (net/http
// closes without a reply on a header-read timeout, so the wire-visible
// contract is the prompt EOF, not a status line).
func TestSlowlorisHeaderCutoff(t *testing.T) {
	pool := sweep.NewPool(1)
	t.Cleanup(pool.Close)
	s := newServer(cache.New(0), pool, telemetry.NewRegistry(0), 1, 512, 4, true, 0)
	httpSrv := newHTTPServer(s.routes(), 100*time.Millisecond, time.Second)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	t.Cleanup(func() { httpSrv.Close() })

	conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request: the header never completes within the deadline.
	if _, err := io.WriteString(conn, "POST /v1/rendezvous HTTP/1.1\r\nHost: t\r\n"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	raw, err := io.ReadAll(conn)
	if elapsed := time.Since(start); err != nil || elapsed > 5*time.Second {
		t.Fatalf("slow header not cut off: read err %v after %v (held open past the 100ms deadline)", err, elapsed)
	}
	if len(raw) != 0 {
		t.Logf("server replied %q before closing", raw)
	}

	// A well-formed request on the same server still answers fine: the
	// timeouts punish slow clients only.
	resp, err := http.Post("http://"+ln.Addr().String()+"/v1/feasibility",
		"application/json", strings.NewReader(`{"v":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after cutoff: status %d, want 200", resp.StatusCode)
	}
}
