package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// newTestServer builds a server on the given cache with a fresh registry and
// pool, wrapped in an httptest server. sweeps is the admission capacity.
func newTestServer(t *testing.T, c *cache.Cache, sweeps int) (*server, *httptest.Server) {
	t.Helper()
	pool := sweep.NewPool(2)
	t.Cleanup(pool.Close)
	s := newServer(c, pool, telemetry.NewRegistry(0), sweeps, 512, 4, true, 0)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp.StatusCode, data
}

func TestRendezvousEndpoint(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 1)
	status, body := post(t, ts, "/v1/rendezvous", `{"v":0.5,"dx":1,"dy":0,"r":0.25}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var res simResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Errorf("default feasible instance did not meet: %+v", res)
	}
	if res.Algorithm != "alg4" {
		t.Errorf("algorithm %q, want alg4", res.Algorithm)
	}
	if res.Time <= 0 || res.Time > res.Horizon {
		t.Errorf("meeting time %v outside (0, horizon %v]", res.Time, res.Horizon)
	}
}

func TestSearchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 1)
	status, body := post(t, ts, "/v1/search", `{"x":1.5,"y":0.5,"r":0.25,"algo":"universal"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var res simResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Algorithm != "alg7" {
		t.Errorf("search result %+v, want met via alg7", res)
	}
}

func TestFeasibilityEndpoint(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 1)

	status, body := post(t, ts, "/v1/feasibility", `{"v":0.5}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var res struct {
		Feasible  bool     `json:"feasible"`
		Reasons   []string `json:"reasons"`
		Algorithm string   `json:"algorithm"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || len(res.Reasons) == 0 {
		t.Errorf("v=0.5 should be feasible with reasons, got %+v", res)
	}

	// The perfectly symmetric point: v=1, tau=1, phi=0, same chirality.
	status, body = post(t, ts, "/v1/feasibility", `{"v":1,"tau":1,"phi":0,"chi":1}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("symmetric instance classified feasible: %+v", res)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 1)
	cases := []struct {
		path, body string
	}{
		{"/v1/rendezvous", `{"nope":1}`},               // unknown field
		{"/v1/rendezvous", `{"v":-1}`},                 // invalid speed
		{"/v1/rendezvous", `{"d":1,"dx":2}`},           // d vs dx/dy conflict
		{"/v1/rendezvous", `{"algo":"quantum"}`},       // unknown algorithm
		{"/v1/sweep", `{}`},                            // axes required
		{"/v1/sweep", `{"axes":["v=zero:1:1"]}`},       // malformed axis
		{"/v1/sweep", `{"axes":["v=0.01:1:0.001"]}`},   // budget exceeded
		{"/v1/sweep", `{"axes":["v=1"],"samples":-1}`}, // negative samples
	}
	for _, tc := range cases {
		status, body := post(t, ts, tc.path, tc.body)
		if status != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d (body %s), want 400", tc.path, tc.body, status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s %s: error body %q not a JSON error", tc.path, tc.body, body)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/rendezvous"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/rendezvous: status %d, want 405", resp.StatusCode)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, cache.New(0), 1)
	status, body := post(t, ts, "/v1/sweep",
		`{"axes":["v=0.25:0.75:0.25","d=1:2:1"],"algo":"search","samples":2,"seed":7}`)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var res struct {
		Axes      []string `json:"axes"`
		Algorithm string   `json:"algorithm"`
		Points    int      `json:"points"`
		Samples   int      `json:"samples"`
		Seed      int64    `json:"seed"`
		Cells     []struct {
			Point []float64 `json:"point"`
			Met   int       `json:"met"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Points != 6 || len(res.Cells) != 6 {
		t.Fatalf("grid size %d/%d cells, want 6", res.Points, len(res.Cells))
	}
	if res.Algorithm != "alg4" || res.Samples != 2 || res.Seed != 7 {
		t.Errorf("sweep meta %+v, want alg4/2 samples/seed 7", res)
	}
	for _, cell := range res.Cells {
		if cell.Met != 2 {
			t.Errorf("cell %v met %d/2 samples; feasible grid should always meet", cell.Point, cell.Met)
		}
	}
	if st := s.cache.Stats(); st.Lookups == 0 {
		t.Errorf("sweep did not read through the cache: %+v", st)
	}
	// The server defaults to batched sweeps: the kernel telemetry must show
	// rows amortizing multiple lanes each.
	rows, lanes := s.batchRows.Total(), s.batchLanes.Total()
	if rows == 0 || lanes == 0 {
		t.Errorf("batch telemetry empty after a batched sweep: rows=%d lanes=%d", rows, lanes)
	}
	if lanes < rows {
		t.Errorf("batch.lanes (%d) < batch.rows (%d): rows must hold at least one lane", lanes, rows)
	}
}

// TestSweepAdmission429 saturates the sweep house and checks the overflow
// answer: 429, Retry-After, JSON error, and the rejection counter.
func TestSweepAdmission429(t *testing.T) {
	s, ts := newTestServer(t, cache.New(0), 1)
	// Occupy the single admission slot as a long-running sweep would.
	s.sweepSem <- struct{}{}
	defer func() { <-s.sweepSem }()

	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		bytes.NewReader([]byte(`{"axes":["v=0.25:0.5:0.25"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("429 body not a JSON error: %v %q", err, e.Error)
	}
	if got := s.rejected.Total(); got != 1 {
		t.Errorf("sweep.rejected = %d, want 1", got)
	}
}

// TestConcurrentIdenticalQueriesDedup fires bursts of identical cold queries
// and checks the singleflight collapsed at least one burst: Dedups > 0 and
// the flight's followers all got the leader's result.
func TestConcurrentIdenticalQueriesDedup(t *testing.T) {
	s, ts := newTestServer(t, cache.New(0), 1)
	const clients = 16
	// A symmetric (infeasible) instance walks the whole horizon, so the
	// simulation takes ~tens of ms — plenty for concurrent requests to land
	// while the leader is still computing. Each attempt queries a fresh key
	// (distinct dy), so every burst starts cold; one overlapping pair
	// anywhere is enough.
	for attempt := 0; attempt < 20; attempt++ {
		body := fmt.Sprintf(`{"v":1,"tau":1,"phi":0,"chi":1,"dx":1,"dy":0.0%d,"horizon":10000}`, attempt+1)
		var wg sync.WaitGroup
		var mu sync.Mutex
		gaps := make(map[float64]int)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, data := post(t, ts, "/v1/rendezvous", body)
				if status != http.StatusOK {
					t.Errorf("status %d: %s", status, data)
					return
				}
				var res simResponse
				if err := json.Unmarshal(data, &res); err != nil {
					t.Error(err)
					return
				}
				if res.Met {
					t.Errorf("symmetric instance met: %+v", res)
				}
				mu.Lock()
				gaps[res.Gap]++
				mu.Unlock()
			}()
		}
		wg.Wait()
		if len(gaps) != 1 {
			t.Fatalf("identical queries returned %d distinct horizon gaps: %v", len(gaps), gaps)
		}
		if st := s.cache.Stats(); st.Dedups > 0 {
			if st.Hits+st.Misses != st.Lookups {
				t.Fatalf("incoherent stats under load: %+v", st)
			}
			return
		}
	}
	t.Fatalf("no dedup across 20 cold bursts of %d identical queries: %+v", clients, s.cache.Stats())
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, cache.New(0), 1)
	post(t, ts, "/v1/rendezvous", `{"v":0.5}`)
	post(t, ts, "/v1/rendezvous", `{"v":0.5}`) // repeat: one hit
	s.reg.Flush()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits+m.Cache.Misses != m.Cache.Lookups {
		t.Errorf("cache counters incoherent: %+v", m.Cache)
	}
	if m.Cache.Hits == 0 || m.Cache.Lookups < 2 {
		t.Errorf("repeat query did not hit: %+v", m.Cache)
	}
	if got := m.Counters["http.rendezvous"].Total; got != 2 {
		t.Errorf("http.rendezvous counter = %d, want 2", got)
	}
	if tm, ok := m.Timers["http.rendezvous"]; !ok || tm.Total != 2 {
		t.Errorf("http.rendezvous timer = %+v, want 2 observations", m.Timers["http.rendezvous"])
	}
	if m.Runtime.Goroutines <= 0 {
		t.Errorf("runtime stats missing: %+v", m.Runtime)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, cache.New(0), 3)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status     string  `json:"status"`
		UptimeS    float64 `json:"uptime_s"`
		SweepSlots int     `json:"sweep_slots"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.SweepSlots != 3 {
		t.Errorf("healthz %+v, want ok with 3 sweep slots", h)
	}
}

// TestShutdownFlushLoadable drives traffic through a disk-backed server,
// flushes as the graceful-shutdown path does, and checks a fresh cache warms
// from the file with the same contents.
func TestShutdownFlushLoadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "served.jsonl")
	c, err := cache.Open(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, c, 1)
	post(t, ts, "/v1/rendezvous", `{"v":0.5,"dx":1,"dy":0}`)
	post(t, ts, "/v1/search", `{"x":1.5,"y":0}`)
	post(t, ts, "/v1/sweep", `{"axes":["v=0.25:0.5:0.25"]}`)

	if err := c.Save(); err != nil {
		t.Fatalf("shutdown flush: %v", err)
	}
	warm, err := cache.Open(path, 0)
	if err != nil {
		t.Fatalf("reload flushed cache: %v", err)
	}
	if warm.Len() == 0 || warm.Len() != c.Len() {
		t.Fatalf("reloaded cache has %d results, server had %d", warm.Len(), c.Len())
	}

	// A restarted server on the warm cache answers the same query from disk
	// state: all hits, no new misses.
	s2, ts2 := newTestServer(t, warm, 1)
	post(t, ts2, "/v1/rendezvous", `{"v":0.5,"dx":1,"dy":0}`)
	if st := s2.cache.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("warm-start query stats %+v, want pure hit", st)
	}
}
