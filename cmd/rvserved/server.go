package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/feasibility"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/sampler"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// maxRequestBody bounds every request body; the API's JSON documents are
// tiny, so anything larger is a client error, not a workload.
const maxRequestBody = 1 << 20

// maxRequestWorkers caps the private worker budget a /v1/sweep request may
// claim for itself: one request can use at most the machine, never more.
func maxRequestWorkers() int { return runtime.GOMAXPROCS(0) }

// server is the shared serving state: the singleflight result cache (the hot
// store every request reads through), the process-wide sweep pool, the
// telemetry registry, and the sweep admission control.
type server struct {
	cache *cache.Cache
	pool  *sweep.Pool
	reg   *telemetry.Registry
	mon   *sweep.Monitor
	start time.Time

	// Admission control for /v1/sweep: at most cap(sweepSem) sweep requests
	// are in the building (queued on the pool or executing). A full house
	// answers 429 + Retry-After instead of queueing unboundedly, so heavy
	// sweeps can never pile up behind each other and starve point queries.
	sweepSem chan struct{}
	// maxSweepJobs bounds one sweep request's job count (grid points ×
	// samples): the per-request work budget.
	maxSweepJobs int
	// maxWorkers caps a request's private worker budget (req.Workers);
	// requests without one share the process-wide pool.
	maxWorkers int
	// batch routes /v1/sweep evaluations through the SoA batch kernels
	// (identical response bytes; batch.rows/batch.lanes count the kernel
	// calls and the lanes they amortized).
	batch bool
	// timeout is the per-request simulation deadline (-timeout): each point
	// query and sweep runs under a context that expires after it, the
	// deadline propagates into the horizon-walk loops (sim.Options.Ctx),
	// and an expired request answers 503 + Retry-After with the
	// requests.deadline counter incremented. 0 disables.
	timeout time.Duration

	requests, errs, rejected *telemetry.Counter
	batchRows, batchLanes    *telemetry.Counter
	deadline                 *telemetry.Counter
	sweepDepth               *telemetry.Gauge
	// samplerUse counts sweep requests per draw source ("sampler.pseudo",
	// "sampler.sobol", ...): the /metrics view of which estimators clients
	// actually run.
	samplerUse map[sampler.Kind]*telemetry.Counter
}

// newServer assembles the serving state. sweeps is the admission capacity of
// /v1/sweep (0 rejects every sweep — useful in tests), maxSweepJobs the
// per-request job budget, maxWorkers the cap on private worker budgets,
// batch whether sweeps evaluate through the SoA batch kernels, timeout the
// per-request simulation deadline (0 disables).
func newServer(c *cache.Cache, pool *sweep.Pool, reg *telemetry.Registry, sweeps, maxSweepJobs, maxWorkers int, batch bool, timeout time.Duration) *server {
	s := &server{
		cache:        c,
		pool:         pool,
		reg:          reg,
		mon:          &sweep.Monitor{},
		start:        time.Now(),
		sweepSem:     make(chan struct{}, sweeps),
		maxSweepJobs: maxSweepJobs,
		maxWorkers:   maxWorkers,
		batch:        batch,
		timeout:      timeout,
		requests:     reg.Counter("http.requests"),
		errs:         reg.Counter("http.errors"),
		rejected:     reg.Counter("sweep.rejected"),
		batchRows:    reg.Counter("batch.rows"),
		batchLanes:   reg.Counter("batch.lanes"),
		deadline:     reg.Counter("requests.deadline"),
		sweepDepth:   reg.Gauge("sweep.in_flight"),
		samplerUse:   make(map[sampler.Kind]*telemetry.Counter),
	}
	for _, kind := range sampler.Kinds() {
		s.samplerUse[kind] = reg.Counter("sampler." + kind.String())
	}
	telemetry.AttachMonitor(reg, s.mon)
	s.sweepDepth.Set(0)
	return s
}

// routes builds the endpoint mux.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/rendezvous", s.instrument("rendezvous", s.handleRendezvous))
	mux.HandleFunc("POST /v1/search", s.instrument("search", s.handleSearch))
	mux.HandleFunc("POST /v1/feasibility", s.instrument("feasibility", s.handleFeasibility))
	mux.HandleFunc("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// instrument wraps a handler with the per-endpoint request counter and
// latency timer plus the global request/error counters.
func (s *server) instrument(name string, h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	counter := s.reg.Counter("http." + name)
	timer := s.reg.Timer("http." + name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.requests.Inc()
		counter.Inc()
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		if err := h(w, r); err != nil {
			s.errs.Inc()
			writeError(w, err)
		}
		timer.Observe(time.Since(start))
	}
}

// httpError carries a status code out of a handler.
type httpError struct {
	status int
	msg    string
	header map[string]string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// requestCtx derives the per-request simulation context: the client's
// request context (so a dropped connection cancels the walk) bounded by the
// server's -timeout deadline. With no timeout the request context is used
// as-is.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// queryError classifies a simulation error: a cancellation — the request
// deadline expiring mid-walk, or the client going away — is 503 +
// Retry-After with the requests.deadline counter incremented (the work was
// valid, the time budget was not); anything else is the client's 400. The
// cancel sentinels are matched through the sweep engine's wrappers
// (JobError, LaneError) via errors.Is.
func (s *server) queryError(err error) error {
	if errors.Is(err, sim.ErrCanceled) || errors.Is(err, sweep.ErrCanceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.deadline.Inc()
		return &httpError{
			status: http.StatusServiceUnavailable,
			msg:    fmt.Sprintf("deadline exceeded: %v", err),
			header: map[string]string{"Retry-After": strconv.Itoa(retryAfterSeconds)},
		}
	}
	return badRequest("%v", err)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
		for k, v := range he.header {
			w.Header().Set(k, v)
		}
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing useful left to do
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// pointParams are the optional instance parameters of a point query. Absent
// fields keep the default working point of the CLI's -grid sweeps (the
// mapping is experiments.GridInstance, shared verbatim): v = 1/2, τ = 1,
// φ = 0, χ = +1, d = (1,0), r = 1/4. dx/dy override the displacement vector
// exactly; d keeps it on the +x axis.
type pointParams struct {
	V   *float64 `json:"v,omitempty"`
	Tau *float64 `json:"tau,omitempty"`
	Phi *float64 `json:"phi,omitempty"`
	Chi *float64 `json:"chi,omitempty"`
	D   *float64 `json:"d,omitempty"`
	DX  *float64 `json:"dx,omitempty"`
	DY  *float64 `json:"dy,omitempty"`
	R   *float64 `json:"r,omitempty"`
}

// instance maps the present parameters onto the default instance via the
// same request→Instance mapping the CLI grid sweeps use.
func (p pointParams) instance() (sim.Instance, error) {
	var names []string
	var vals []float64
	add := func(name string, v *float64) {
		if v != nil {
			names = append(names, name)
			vals = append(vals, *v)
		}
	}
	add("v", p.V)
	add("tau", p.Tau)
	add("phi", p.Phi)
	add("chi", p.Chi)
	add("d", p.D)
	add("r", p.R)
	in, err := experiments.GridInstance(names, vals)
	if err != nil {
		return in, badRequest("%v", err)
	}
	if p.DX != nil || p.DY != nil {
		if p.D != nil {
			return in, badRequest("d and dx/dy are mutually exclusive")
		}
		var d geom.Vec
		if p.DX != nil {
			d.X = *p.DX
		}
		if p.DY != nil {
			d.Y = *p.DY
		}
		in.D = d
		if err := in.Validate(); err != nil {
			return in, badRequest("%v", err)
		}
	}
	return in, nil
}

// simResponse is the JSON shape of one simulation outcome.
type simResponse struct {
	Met       bool    `json:"met"`
	Time      float64 `json:"time"`
	Gap       float64 `json:"gap"`
	DistanceA float64 `json:"distance_a"`
	DistanceB float64 `json:"distance_b"`
	Intervals int     `json:"intervals"`
	Horizon   float64 `json:"horizon"`
	Algorithm string  `json:"algorithm"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func toSimResponse(res sim.Result, horizon float64, programID string, elapsed time.Duration) simResponse {
	return simResponse{
		Met:       res.Met,
		Time:      res.Time,
		Gap:       res.Gap,
		DistanceA: res.DistanceA,
		DistanceB: res.DistanceB,
		Intervals: res.Intervals,
		Horizon:   horizon,
		Algorithm: programID,
		ElapsedMS: elapsed.Seconds() * 1e3,
	}
}

// handleRendezvous serves POST /v1/rendezvous: one exact rendezvous
// simulation, read through the singleflight cache (concurrent identical
// queries simulate once; repeats are served from memory).
func (s *server) handleRendezvous(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		pointParams
		Algo    string   `json:"algo,omitempty"`
		Horizon *float64 `json:"horizon,omitempty"`
		// Sampler is accepted for parity with /v1/sweep and validated the
		// same way; a single exact instance draws nothing, so a valid name
		// changes no bytes here.
		Sampler string `json:"sampler,omitempty"`
	}
	if err := decode(r, &req); err != nil {
		return err
	}
	if _, err := sampler.ParseKind(req.Sampler); err != nil {
		return badRequest("%v", err)
	}
	in, err := req.instance()
	if err != nil {
		return err
	}
	programID, program, err := experiments.GridAlgorithm(req.Algo)
	if err != nil {
		return badRequest("%v", err)
	}
	horizon := experiments.RendezvousHorizon(in)
	if req.Horizon != nil {
		horizon = *req.Horizon
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	res, err := s.cache.Rendezvous(programID, program, in, sim.Options{Horizon: horizon, Ctx: ctx})
	if err != nil {
		return s.queryError(err)
	}
	writeJSON(w, http.StatusOK, toSimResponse(res, horizon, programID, time.Since(start)))
	return nil
}

// defaultSearchHorizon bounds a search query whose caller did not pass one.
// The cumulative search covers every target eventually, so the horizon only
// matters for unreachable configurations; 1e5 keeps those bounded without
// truncating any sensible query.
const defaultSearchHorizon = 1e5

// handleSearch serves POST /v1/search: the one-robot search problem against
// a static target, through the same cache.
func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		Algo    string   `json:"algo,omitempty"`
		X       float64  `json:"x"`
		Y       float64  `json:"y"`
		R       *float64 `json:"r,omitempty"`
		Horizon *float64 `json:"horizon,omitempty"`
	}
	if err := decode(r, &req); err != nil {
		return err
	}
	programID, program, err := experiments.GridAlgorithm(req.Algo)
	if err != nil {
		return badRequest("%v", err)
	}
	radius := 0.25
	if req.R != nil {
		radius = *req.R
	}
	horizon := defaultSearchHorizon
	if req.Horizon != nil {
		horizon = *req.Horizon
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	start := time.Now()
	res, err := s.cache.Search(programID, program, geom.V(req.X, req.Y), radius, sim.Options{Horizon: horizon, Ctx: ctx})
	if err != nil {
		return s.queryError(err)
	}
	writeJSON(w, http.StatusOK, toSimResponse(res, horizon, programID, time.Since(start)))
	return nil
}

// handleFeasibility serves POST /v1/feasibility: the Theorem 4
// characterisation for the given attributes — pure classification, no
// simulation.
func (s *server) handleFeasibility(w http.ResponseWriter, r *http.Request) error {
	var req pointParams
	if err := decode(r, &req); err != nil {
		return err
	}
	in, err := req.instance()
	if err != nil {
		return err
	}
	verdict := feasibility.Classify(in.Attrs)
	reasons := make([]string, len(verdict.Reasons))
	for i, reason := range verdict.Reasons {
		reasons[i] = reason.String()
	}
	writeJSON(w, http.StatusOK, struct {
		Feasible  bool             `json:"feasible"`
		Reasons   []string         `json:"reasons"`
		Algorithm string           `json:"algorithm"`
		Attrs     frame.Attributes `json:"attributes"`
	}{verdict.Feasible, reasons, feasibility.Recommend(in.Attrs).String(), in.Attrs})
	return nil
}

// handleSweep serves POST /v1/sweep: a whole grid of rendezvous instances
// through the shared process-wide sweep pool (or, when the request carries
// its own worker budget, through private goroutines capped at that budget).
// Admission is bounded: a full sweep house answers 429 + Retry-After.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	var req struct {
		Axes    []string `json:"axes"`
		Algo    string   `json:"algo,omitempty"`
		Samples int      `json:"samples,omitempty"`
		Seed    int64    `json:"seed,omitempty"`
		Sampler string   `json:"sampler,omitempty"`
		Workers int      `json:"workers,omitempty"`
	}
	if err := decode(r, &req); err != nil {
		return err
	}
	if len(req.Axes) == 0 {
		return badRequest("axes required (e.g. [\"v=0.25:1:0.25\"])")
	}
	samplerKind, err := sampler.ParseKind(req.Sampler)
	if err != nil {
		return badRequest("%v", err)
	}
	if req.Samples < 0 || req.Workers < 0 {
		return badRequest("samples and workers must be non-negative")
	}
	grid, gerr := sweep.ParseGrid(req.Axes...)
	if gerr != nil {
		return badRequest("%v", gerr)
	}
	samples := req.Samples
	if samples < 1 {
		samples = 1
	}
	if jobs := grid.Size() * samples; jobs > s.maxSweepJobs {
		return badRequest("sweep of %d jobs exceeds the per-request budget of %d (points × samples)", jobs, s.maxSweepJobs)
	}

	select {
	case s.sweepSem <- struct{}{}:
		s.sweepDepth.Set(float64(len(s.sweepSem)))
		defer func() {
			<-s.sweepSem
			s.sweepDepth.Set(float64(len(s.sweepSem)))
		}()
	default:
		s.rejected.Inc()
		return &httpError{
			status: http.StatusTooManyRequests,
			msg:    fmt.Sprintf("sweep admission full (%d in flight); retry shortly", cap(s.sweepSem)),
			header: map[string]string{"Retry-After": strconv.Itoa(retryAfterSeconds)},
		}
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	s.samplerUse[samplerKind].Inc()
	cfg := experiments.Config{
		Seed:    req.Seed,
		Samples: req.Samples,
		Sampler: samplerKind,
		Cache:   s.cache,
		Monitor: s.mon,
		Pool:    s.pool,
		Batch:   s.batch,
		Ctx:     ctx,
		OnBatch: func(rows, lanes int) {
			s.batchRows.Add(uint64(rows))
			s.batchLanes.Add(uint64(lanes))
		},
	}
	if req.Workers > 0 {
		// A private worker budget: this sweep runs on its own goroutines,
		// capped at the request's budget (itself capped by the server), and
		// leaves the shared pool to everyone else.
		cfg.Pool = nil
		cfg.Workers = min(req.Workers, s.maxWorkers)
	}
	start := time.Now()
	res, err := experiments.SweepGrid(req.Axes, req.Algo, cfg)
	if err != nil {
		return s.queryError(err)
	}
	writeJSON(w, http.StatusOK, struct {
		*experiments.GridResult
		Seed      int64   `json:"seed"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}{res, req.Seed, time.Since(start).Seconds() * 1e3})
	return nil
}

// retryAfterSeconds is the Retry-After hint on a 429: sweeps are seconds,
// not hours, so a short backoff is honest.
const retryAfterSeconds = 1

// metricsResponse is the GET /metrics document: the telemetry snapshot plus
// the cache's coherent counter snapshot. Cache.Lookups == Hits + Misses in
// every scrape — cache.Stats takes the whole snapshot in one critical
// section — which load checks assert end to end.
type metricsResponse struct {
	telemetry.Snapshot
	Cache cache.Stats `json:"cache"`
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	writeJSON(w, http.StatusOK, metricsResponse{Snapshot: s.reg.Snapshot(), Cache: s.cache.Stats()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"uptime_s":    time.Since(s.start).Seconds(),
		"cache_len":   s.cache.Len(),
		"pool_size":   s.pool.Workers(),
		"sweep_slots": cap(s.sweepSem),
	})
}
