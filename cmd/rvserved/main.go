// Command rvserved serves the rendezvous/search/feasibility simulators as a
// long-running HTTP/JSON daemon — rendezvous as a service.
//
// Endpoints:
//
//	POST /v1/rendezvous  one exact rendezvous simulation
//	                     {"v":0.5,"tau":1,"phi":0,"chi":1,"dx":1,"dy":0,"r":0.25,
//	                      "algo":"search|universal","horizon":123.4}
//	                     — every field optional; absent fields take the
//	                     default working point of the CLI grid sweeps
//	                     (v=0.5, τ=1, φ=0, χ=+1, d=(1,0), r=0.25).
//	POST /v1/search      one-robot search for a static target
//	                     {"x":2,"y":1,"r":0.25,"algo":"...","horizon":1e5}
//	POST /v1/feasibility Theorem 4 classification (no simulation)
//	                     {"v":0.5,"tau":1,"phi":0,"chi":1}
//	POST /v1/sweep       a grid of rendezvous instances through the shared
//	                     process-wide sweep pool
//	                     {"axes":["v=0.25:1:0.25","d=1:3:1"],"algo":"search",
//	                      "samples":3,"seed":7,"sampler":"sobol","workers":0}
//	                     — "sampler" selects the Monte-Carlo draw source:
//	                     "pseudo" (the default; omitted and "" mean the
//	                     same), "stratified", "halton", or "sobol". Unknown
//	                     names are a 400. The response echoes the resolved
//	                     name in its "sampler" field. /v1/rendezvous accepts
//	                     the same field for request parity (validated, but a
//	                     single exact instance draws nothing)
//	GET  /metrics        telemetry snapshot (flush-interval counters, gauges,
//	                     latency timers, runtime stats) + coherent cache
//	                     counters (hits+misses == lookups in every scrape).
//	                     With batched sweeps enabled, batch.rows counts the
//	                     SoA kernel calls and batch.lanes the instances they
//	                     amortized (lanes/rows ≈ the amortization factor);
//	                     sampler.<name> counts sweep requests per draw source
//	GET  /healthz        liveness: uptime, cache occupancy, pool size
//
// The singleflight result cache is the server's hot store: repeated queries
// are served from memory, concurrent identical queries simulate once, and
// with -cachefile the cache doubles as restart-warm state — loaded on boot,
// flushed every -flush interval and once more on graceful shutdown
// (SIGINT/SIGTERM), so a restarted daemon answers its working set from disk.
//
// Admission control: at most -sweeps sweep requests are in flight at once
// and each is bounded to -sweep-jobs jobs (grid points × samples); excess
// sweeps are rejected with 429 + Retry-After rather than queued unboundedly,
// so batch traffic cannot starve point queries.
//
// Flags:
//
//	-addr ADDR        listen address (default :8080; use 127.0.0.1:0 for an
//	                  ephemeral port — the bound address is printed on stdout)
//	-workers N        shared sweep pool size (0 = GOMAXPROCS)
//	-cachefile PATH   JSON-lines cache persistence (empty = memory only)
//	-cachesize N      LRU capacity (0 = default 65536)
//	-flush D          periodic cache flush interval (0 disables; default 60s)
//	-sweeps N         max concurrent /v1/sweep requests (default 2)
//	-sweep-jobs N     per-sweep job budget, points × samples (default 4096)
//	-metrics-flush D  telemetry flush interval (default 10s)
//	-batch            route /v1/sweep through the SoA batch kernels, which
//	                  amortize trajectory generation across whole grid rows
//	                  (default true; responses are byte-identical either way)
//	-timeout D        per-request simulation deadline (default 60s; 0
//	                  disables). The deadline threads into the horizon-walk
//	                  loops (sim.Options.Ctx), so a query that would walk past
//	                  it is canceled mid-walk and answered 503 + Retry-After,
//	                  with the requests.deadline counter incremented. A valid
//	                  query that completes in time is byte-identical with any
//	                  timeout value.
//	-chaos SPEC       deterministic fault injection into the cache persistence
//	                  path (see internal/chaos): e.g.
//	                  "seed=7,every=3,kinds=err+short,sites=cache.save".
//	                  Faults are a pure function of (seed, site, invocation
//	                  count) — reruns replay the exact schedule. For crash
//	                  drills and cmd/chaoscheck, not production.
//
// Durability: the cache file is written via fsync + atomic rename, every
// record is CRC-framed, and Puts between flushes append to a sidecar journal
// (<cachefile>.journal) replayed on boot — a SIGKILL loses at most the
// unflushed journal tail (< one journal window). Damaged lines are counted
// (cache.corrupt in /metrics) and skipped, never trusted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		workers      = flag.Int("workers", 0, "shared sweep pool size (0 = GOMAXPROCS)")
		cacheFile    = flag.String("cachefile", "", "JSON-lines cache persistence path (empty = memory only)")
		cacheSize    = flag.Int("cachesize", 0, "result cache capacity (0 = default)")
		flushEvery   = flag.Duration("flush", time.Minute, "periodic cache flush interval (0 disables)")
		sweeps       = flag.Int("sweeps", 2, "max concurrent /v1/sweep requests")
		sweepJobs    = flag.Int("sweep-jobs", 4096, "per-sweep job budget (grid points × samples)")
		metricsFlush = flag.Duration("metrics-flush", telemetry.DefaultInterval, "telemetry flush interval")
		batch        = flag.Bool("batch", true, "route /v1/sweep through the SoA batch kernels (identical responses)")
		timeout      = flag.Duration("timeout", time.Minute, "per-request simulation deadline (0 disables; expiry answers 503)")
		chaosSpec    = flag.String("chaos", "", "deterministic fault-injection spec for the cache persistence path (see internal/chaos; empty disables)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *cacheFile, *cacheSize, *flushEvery, *sweeps, *sweepJobs, *metricsFlush, *batch, *timeout, *chaosSpec); err != nil {
		fmt.Fprintln(os.Stderr, "rvserved:", err)
		os.Exit(1)
	}
}

// defaultReadHeaderTimeout and defaultIdleTimeout are the server's slow-client
// protections: a client that dribbles its request headers is cut off with 408
// (slowloris protection), an idle keep-alive connection is reclaimed after two
// minutes. Neither touches an accepted request's simulation budget — that is
// -timeout's job.
const (
	defaultReadHeaderTimeout = 10 * time.Second
	defaultIdleTimeout       = 2 * time.Minute
)

// newHTTPServer wraps a handler with the transport-level timeouts every
// rvserved listener uses (the serving tests exercise the same constructor with
// shorter values).
func newHTTPServer(h http.Handler, readHeaderTimeout, idleTimeout time.Duration) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
}

func run(addr string, workers int, cacheFile string, cacheSize int, flushEvery time.Duration, sweeps, sweepJobs int, metricsFlush time.Duration, batch bool, timeout time.Duration, chaosSpec string) error {
	if sweeps < 1 {
		return fmt.Errorf("-sweeps must be at least 1")
	}
	if sweepJobs < 1 {
		return fmt.Errorf("-sweep-jobs must be at least 1")
	}
	inj, err := chaos.Parse(chaosSpec)
	if err != nil {
		return fmt.Errorf("-chaos: %w", err)
	}

	var c *cache.Cache
	if cacheFile != "" {
		c, err = cache.Open(cacheFile, cacheSize)
		if err != nil {
			return fmt.Errorf("open cache: %w", err)
		}
		fmt.Printf("rvserved: cache %s warm with %d results\n", cacheFile, c.Len())
	} else {
		c = cache.New(cacheSize)
	}
	c.SetChaos(inj)

	pool := sweep.NewPool(workers)
	defer pool.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.NewRegistry(metricsFlush)
	reg.Start(ctx)

	srv := newServer(c, pool, reg, sweeps, sweepJobs, maxRequestWorkers(), batch, timeout)
	httpSrv := newHTTPServer(srv.routes(), defaultReadHeaderTimeout, defaultIdleTimeout)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The printed address is the contract for ephemeral-port callers
	// (loadcheck, supervisors): parse the line, then talk to the port.
	fmt.Printf("rvserved: listening on http://%s\n", ln.Addr())

	// Periodic flush: restart-warm state must not depend on a clean
	// shutdown. Save serializes against concurrent flushes internally.
	if cacheFile != "" && flushEvery > 0 {
		go func() {
			tick := time.NewTicker(flushEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := c.Save(); err != nil {
						fmt.Fprintln(os.Stderr, "rvserved: periodic cache flush:", err)
					}
				}
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Println("rvserved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rvserved: shutdown:", err)
	}
	// The final flush lands after in-flight requests finished their Puts, so
	// the on-disk state holds the complete working set for the next boot.
	if cacheFile != "" {
		if err := c.Save(); err != nil {
			return fmt.Errorf("shutdown cache flush: %w", err)
		}
		fmt.Printf("rvserved: cache flushed to %s (%d results)\n", cacheFile, c.Len())
	}
	return nil
}
