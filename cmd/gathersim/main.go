// Command gathersim simulates n robots with hidden attributes all running
// the paper's search algorithm, and reports every pairwise first meeting
// plus whether simultaneous gathering (diameter ≤ r) occurs — the open
// problem of the paper's Section 5.
//
// Robots are specified with repeated -robot flags of the form
//
//	v,tau,phi,chi,x,y
//
// e.g. -robot 1,1,0,1,0,0 -robot 0.5,1,0,1,1,0. With no -robot flags a
// default three-robot instance is used.
//
// Exit status 0 on success, 1 on error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/algo"
	"repro/internal/frame"
	"repro/internal/gather"
	"repro/internal/geom"
)

// robotFlags accumulates repeated -robot arguments.
type robotFlags []gather.Robot

// String implements flag.Value.
func (r *robotFlags) String() string { return fmt.Sprintf("%d robots", len(*r)) }

// Set implements flag.Value.
func (r *robotFlags) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 6 {
		return fmt.Errorf("want 6 comma-separated fields v,tau,phi,chi,x,y; got %q", s)
	}
	vals := make([]float64, 6)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("field %d of %q: %w", i, s, err)
		}
		vals[i] = v
	}
	*r = append(*r, gather.Robot{
		Attrs: frame.Attributes{
			V: vals[0], Tau: vals[1], Phi: vals[2], Chi: frame.Chirality(int(vals[3])),
		},
		Origin: geom.V(vals[4], vals[5]),
	})
	return nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var robots robotFlags
	r := flag.Float64("r", 0.25, "visibility radius")
	horizon := flag.Float64("horizon", 2e4, "give-up time")
	flag.Var(&robots, "robot", "robot spec v,tau,phi,chi,x,y (repeatable)")
	flag.Parse()

	if len(robots) == 0 {
		robots = robotFlags{
			{Attrs: frame.Attributes{V: 1, Tau: 1, Phi: 0, Chi: frame.CCW}, Origin: geom.V(0, 0)},
			{Attrs: frame.Attributes{V: 0.5, Tau: 1, Phi: 0, Chi: frame.CCW}, Origin: geom.V(1, 0)},
			{Attrs: frame.Attributes{V: 0.75, Tau: 1, Phi: 1.2, Chi: frame.CCW}, Origin: geom.V(0, 1)},
		}
	}
	in := gather.Instance{Robots: robots, R: *r}
	if err := in.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gathersim:", err)
		return 1
	}

	fmt.Printf("%d robots, r = %g, pairwise feasible: %v\n",
		len(robots), *r, gather.AllPairsFeasible(robots))
	for i, rb := range robots {
		fmt.Printf("  robot %d: %v at %v\n", i, rb.Attrs, rb.Origin)
	}

	res, err := gather.Simulate(algo.CumulativeSearch(), in, gather.Options{Horizon: *horizon})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gathersim:", err)
		return 1
	}
	fmt.Println("pairwise first meetings:")
	for _, p := range res.Pairs {
		if p.Met {
			fmt.Printf("  (%d,%d): t = %.6g\n", p.I, p.J, p.Time)
		} else {
			fmt.Printf("  (%d,%d): never (gap %.4g at horizon)\n", p.I, p.J, p.Gap)
		}
	}
	if res.Gathered {
		fmt.Printf("gathered (diameter ≤ r) at t = %.6g\n", res.GatherTime)
	} else {
		fmt.Printf("no simultaneous gathering (diameter %.4g at horizon %.4g)\n",
			res.DiameterAtHorizon, *horizon)
	}
	return 0
}
