// Command repolint runs the repo's static determinism and hot-path lint
// pass (internal/lint) over the module: globalrand, walltime, maporder,
// floatfmt and boxing — the static half of the byte-identity contract the
// goldens, `make shardcheck`, and the runtime alloc gates enforce
// dynamically. It is dependency-free: package discovery via `go list -json`
// and type-checking from source with go/parser + go/types.
//
// Usage:
//
//	repolint [-C dir] [packages]
//
// Packages default to ./... relative to -C (default "."). Each finding is
// printed as file:line:col: [analyzer] message; the exit status is 1 when
// there are findings and 0 on a clean tree. Suppress a finding with an
// explicit, justified directive on or directly above the offending line:
//
//	//lint:allow <analyzer> <reason>
//
// `make lint` runs repolint together with gofmt -l and go vet, and is a
// blocking step of `make ci`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	flag.Parse()

	diags, err := lint.Run(*dir, flag.Args(), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
