package rendezvous_test

import (
	"fmt"

	"repro"
)

// Two robots that differ only in speed meet under the universal algorithm.
func Example() {
	in := rendezvous.Instance{
		Attrs: rendezvous.Attributes{V: 0.5, Tau: 1, Phi: 0, Chi: rendezvous.CCW},
		D:     rendezvous.XY(1, 0),
		R:     0.25,
	}
	res, err := rendezvous.Rendezvous(rendezvous.Universal(), in,
		rendezvous.Options{Horizon: 1e5})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("met:", res.Met)
	// Output:
	// met: true
}

// Classify explains which attribute differences break symmetry (Theorem 4).
func ExampleClassify() {
	fmt.Println(rendezvous.Classify(rendezvous.Attributes{
		V: 1, Tau: 0.5, Phi: 0, Chi: rendezvous.CCW,
	}))
	fmt.Println(rendezvous.Classify(rendezvous.Reference()))
	// Output:
	// feasible: different clock units (τ ≠ 1)
	// infeasible: the robots are perfectly symmetric
}

// Feasible is the Theorem 4 characterisation as a predicate.
func ExampleFeasible() {
	mirror := rendezvous.Attributes{V: 1, Tau: 1, Phi: 2, Chi: rendezvous.CW}
	rotated := rendezvous.Attributes{V: 1, Tau: 1, Phi: 2, Chi: rendezvous.CCW}
	fmt.Println(rendezvous.Feasible(mirror), rendezvous.Feasible(rotated))
	// Output:
	// false true
}

// Search finds a static target with the paper's Algorithm 4 and respects
// the Theorem 1 bound.
func ExampleSearch() {
	target := rendezvous.Polar(1, 0.3)
	res, err := rendezvous.Search(rendezvous.CumulativeSearch(), target, 0.25,
		rendezvous.Options{Horizon: 1e3})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("found:", res.Met)
	fmt.Println("within Theorem 1 bound:", res.Time <= rendezvous.SearchTimeBound(1, 0.25))
	// Output:
	// found: true
	// within Theorem 1 bound: true
}

// Mu is the frame-disagreement factor of Theorem 2.
func ExampleMu() {
	fmt.Printf("%.0f %.0f\n", rendezvous.Mu(1, 0), rendezvous.Mu(1, 3.141592653589793))
	// Output:
	// 0 2
}
